/**
 * @file
 * Shared command-line plumbing for the tools (modelcheck, stress,
 * sweeprunner): one option-cursor class instead of three hand-rolled
 * argv loops, plus the common option vocabulary — numeric values,
 * transport- and protocol-backend selection, and key=value
 * overrides.
 *
 * Deliberately tiny and exit(2)-on-misuse: these are developer
 * tools, so a missing value or a bad enum name prints what was
 * wrong and stops, matching the behavior the three tools already
 * had.
 */

#ifndef CENJU_TOOLS_CLI_HH
#define CENJU_TOOLS_CLI_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "policy/kind.hh"
#include "reliable/kind.hh"
#include "transport/transport.hh"

namespace cenju::cli
{

/**
 * Cursor over argv options. Typical loop:
 * @code
 * cli::OptionParser args(argc, argv);
 * while (args.next()) {
 *     if (args.is("--seeds"))
 *         opt.seeds = args.u64();
 *     else if (args.is("--verbose"))
 *         opt.verbose = true;
 *     else
 *         return usage(argv[0]);
 * }
 * @endcode
 */
class OptionParser
{
  public:
    /**
     * @param first index of the first option (1 for a main() argv;
     * 0 when the caller already shifted past a subcommand).
     */
    OptionParser(int argc, char **argv, int first = 1)
        : _argc(argc), _argv(argv), _i(first - 1)
    {}

    /** Advance to the next option. @retval false when exhausted */
    bool next() { return ++_i < _argc; }

    /** The option the cursor is on. */
    const char *arg() const { return _argv[_i]; }

    /** Does the current option equal @p name? */
    bool is(const char *name) const
    {
        return std::strcmp(_argv[_i], name) == 0;
    }

    /** Consume and return the current option's value argument. */
    const char *
    value()
    {
        if (_i + 1 >= _argc) {
            std::fprintf(stderr, "%s needs a value\n", _argv[_i]);
            std::exit(2);
        }
        return _argv[++_i];
    }

    /** value() as an unsigned 64-bit number. */
    std::uint64_t
    u64()
    {
        return std::strtoull(value(), nullptr, 10);
    }

    /** value() as an unsigned 32-bit number. */
    unsigned
    u32()
    {
        return unsigned(std::strtoul(value(), nullptr, 10));
    }

  private:
    int _argc;
    char **_argv;
    int _i;
};

/** Usage line for tools accepting --transport. */
inline constexpr const char *transportHelp =
    "  --transport T    interconnect backend: multistage | ideal |"
    " direct\n"
    "                   (default multistage)\n";

/** Consume a --transport value; exits(2) on an unknown backend. */
inline TransportKind
transportValue(OptionParser &args)
{
    const char *s = args.value();
    TransportKind k;
    if (!transportKindFromName(s, k)) {
        std::fprintf(stderr,
                     "unknown transport '%s' (multistage, ideal or "
                     "direct)\n",
                     s);
        std::exit(2);
    }
    return k;
}

/** Usage line for tools accepting --protocol. */
inline constexpr const char *protocolHelp =
    "  --protocol P     coherence backend: queuing | nack |"
    " phase-priority\n"
    "                   (default queuing, or $CENJU_PROTOCOL)\n";

/** Consume a --protocol value; exits(2) on an unknown backend. */
inline ProtocolKind
protocolValue(OptionParser &args)
{
    const char *s = args.value();
    ProtocolKind k;
    if (!protocolKindFromName(s, k)) {
        std::fprintf(stderr,
                     "unknown protocol '%s' (queuing, nack or "
                     "phase-priority)\n",
                     s);
        std::exit(2);
    }
    return k;
}

/** Usage line for tools accepting --reliability. */
inline constexpr const char *reliabilityHelp =
    "  --reliability R  delivery guarantee: off | e2e (retransmit\n"
    "                   decorator over the chosen transport;\n"
    "                   default off, or $CENJU_RELIABILITY)\n";

/** Consume a --reliability value; exits(2) on an unknown mode. */
inline ReliabilityKind
reliabilityValue(OptionParser &args)
{
    const char *s = args.value();
    ReliabilityKind k;
    if (!reliabilityKindFromName(s, k)) {
        std::fprintf(stderr,
                     "unknown reliability mode '%s' (off or e2e)\n",
                     s);
        std::exit(2);
    }
    return k;
}

/**
 * Resolve a --jobs request against --shards so the two compose:
 * each sweep worker drives @p shards simulation threads of its own,
 * and oversubscribing jobs x shards past the hardware threads only
 * adds contention. 0 jobs means "use what the machine has left"
 * (hardware / shards); an explicit jobs value is clamped with a
 * warning when jobs x shards exceeds the hardware.
 */
inline unsigned
clampJobs(unsigned jobs, unsigned shards)
{
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    if (shards == 0)
        shards = 1;
    unsigned fit = hw / shards;
    if (fit == 0)
        fit = 1;
    if (jobs == 0)
        return fit;
    if (jobs * shards > hw && jobs > fit) {
        std::fprintf(stderr,
                     "note: clamping --jobs %u to %u (%u shards x "
                     "%u jobs > %u hardware threads)\n",
                     jobs, fit, shards, jobs, hw);
        return fit;
    }
    return jobs;
}

/**
 * Split "key=value" into its parts.
 * @retval false if there is no '=' or the key is empty
 */
inline bool
splitKeyValue(const std::string &s, std::string &key,
              std::string &value)
{
    auto eq = s.find('=');
    if (eq == std::string::npos || eq == 0)
        return false;
    key = s.substr(0, eq);
    value = s.substr(eq + 1);
    return true;
}

} // namespace cenju::cli

#endif // CENJU_TOOLS_CLI_HH
