/**
 * @file
 * cenju-lint: project-specific static analyzer (docs/ANALYSIS.md).
 *
 * The repo's hardest-won invariants are structural, not functional:
 * the Transport layering seam (docs/ARCHITECTURE.md), the
 * allocation-free hot-path rules (docs/PERF.md), and the
 * bit-identical determinism the golden digests certify. Generic
 * tools cannot express "protocol code may speak only transport/" or
 * "hot tables must hash with U64MixHash", so this tool does: a
 * dependency-free tokenizing scanner over the source tree (or the
 * file list of a compile_commands.json) that enforces a versioned
 * rule catalog and emits file:line diagnostics with stable rule IDs.
 *
 * Rule families (full catalog: --list-rules, docs/ANALYSIS.md):
 *   L*  include-layering DAG between src/ modules
 *   A*  hot-path allocation bans in pool-governed modules
 *   D*  determinism bans in digest-affecting modules
 *   X*  hygiene of the exemption mechanism itself
 *
 * Exemptions: a comment of the form
 *     <directive-prefix> allow(<RULE>): <justification>
 * (the prefix is the tool name followed by a colon; written split
 * here so this file's own comments never register directives)
 * suppresses <RULE> on its line, or on the next line when the
 * comment stands alone. The justification text is mandatory (X001)
 * and an exemption that suppresses nothing is itself an error
 * (X002), so stale escapes cannot accumulate.
 *
 * Incremental adoption: --write-baseline records the current
 * diagnostics as content-addressed fingerprints; --baseline
 * suppresses exactly those, so new violations still fail while old
 * ones burn down. The repo itself carries no baseline — it is clean
 * modulo justified exemptions — but downstream forks can use one.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace
{

constexpr const char *kCatalogVersion = "4";

// ---------------------------------------------------------------
// Rule catalog
// ---------------------------------------------------------------

struct RuleInfo
{
    const char *id;
    const char *summary;
};

const RuleInfo kRules[] = {
    {"L001", "include edge violates the src/ layering DAG "
             "(docs/ARCHITECTURE.md)"},
    {"L002", "transport may include network/ only from the "
             "multistage backend files"},
    {"L003", "source directory not registered in the layering DAG "
             "(add it to cenju-lint and docs/ANALYSIS.md)"},
    {"A001", "C allocation (malloc/calloc/realloc/free) is banned; "
             "use pooled or RAII types"},
    {"A002", "std::function in a pool-governed module; use "
             "InlineFunction (src/sim/inline_function.hh)"},
    {"A003", "shared_ptr/make_shared in a pool-governed module; "
             "use pooled, inline, or unique ownership"},
    {"A004", "unordered container in a pool-governed module "
             "without U64MixHash (src/sim/hashing.hh)"},
    {"A005", "naked new/delete in a pool-governed module; use "
             "Pooled<T>, make_unique, or containers"},
    {"D001", "nondeterministic source (rand/time/random_device/"
             "chrono clocks) in simulation code"},
    {"D002", "pointer-keyed associative container: iteration order "
             "follows allocation addresses"},
    {"D003", "iteration over an unordered container in "
             "digest-order-affecting code"},
    {"X001", "malformed exemption: unknown rule id or missing "
             "justification"},
    {"X002", "stale exemption: suppresses no diagnostic"},
};

bool
knownRule(const std::string &id)
{
    for (const RuleInfo &r : kRules)
        if (id == r.id)
            return true;
    return false;
}

// ---------------------------------------------------------------
// Scopes
// ---------------------------------------------------------------

/**
 * The include-layering DAG over src/ modules. A module may include
 * headers only from itself and the modules listed here. Drivers
 * (tools/, bench/, tests/, examples/) may include anything.
 *
 * Edges mirror docs/ARCHITECTURE.md: sim/directory/memory/exec are
 * leaves; policy (the coherence-discipline backends) sits just
 * above sim and is consumed by protocol and node — it must never
 * reach back into the engines, hence its single edge;
 * network and the analytical transports implement the seam;
 * protocol+node+msgpass form one layer group (mutual edges within
 * it are sanctioned); reliable is a transport decorator (it sits
 * on the backend side of the seam and may only see the transport
 * surface plus the fault hooks it honors); check and fault are
 * cross-cutting observers;
 * core composes everything; workload drives core. The lone
 * transport -> network edge is file-scoped (L002): only the
 * multistage backend adapter may name the fabric.
 */
const std::map<std::string, std::set<std::string>> kLayerDag = {
    {"sim", {}},
    {"policy", {"sim"}},
    {"shard", {"sim", "check"}},
    {"directory", {"sim"}},
    {"memory", {"sim"}},
    {"exec", {"sim"}},
    {"network", {"sim", "directory", "transport"}},
    {"transport", {"sim", "directory", "check", "fault",
                   "shard"}},
    {"reliable", {"sim", "transport", "check", "fault"}},
    {"protocol", {"sim", "directory", "memory", "transport",
                  "node", "policy"}},
    {"node", {"sim", "memory", "check", "transport", "protocol",
              "shard", "policy"}},
    {"msgpass", {"sim", "transport", "node", "shard"}},
    {"check", {"sim", "memory", "directory", "network", "transport",
               "node", "protocol"}},
    {"core", {"sim", "exec", "memory", "directory", "check",
              "transport", "network", "node", "protocol",
              "msgpass", "shard", "reliable"}},
    {"fault", {"sim", "core", "check", "network", "protocol",
               "transport", "workload", "shard", "reliable",
               "node"}},
    {"workload", {"sim", "exec", "core"}},
};

/** Files allowed to realize the transport -> network edge. */
const std::set<std::string> kSeamFiles = {
    "src/transport/multistage.hh",
    "src/transport/multistage.cc",
};

/** Modules whose hot paths must not allocate (docs/PERF.md). */
const std::set<std::string> kPoolGoverned = {
    "sim", "shard", "network", "transport", "protocol", "node",
    "msgpass", "memory", "directory", "policy", "reliable",
};

/** Modules whose behavior feeds the golden digests. */
const std::set<std::string> kDigestAffecting = {
    "sim", "shard", "network", "transport", "protocol", "node",
    "msgpass", "memory", "directory", "core", "check", "fault",
    "workload", "policy", "reliable",
};

// ---------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------

struct Diag
{
    std::string file; ///< repo-relative path
    int line = 0;
    std::string rule;
    std::string msg;
    std::string lineText; ///< for baseline fingerprints
};

struct AllowDirective
{
    int line = 0;       ///< line the comment sits on
    int appliesTo = 0;  ///< line it suppresses
    std::string rule;
    bool justified = false;
    bool known = false;
    bool used = false;
};

// ---------------------------------------------------------------
// Small string helpers (no <regex>: keep startup cost trivial)
// ---------------------------------------------------------------

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Find whole-word occurrence of @p word in @p s at/after @p from. */
std::size_t
findWord(const std::string &s, const std::string &word,
         std::size_t from = 0)
{
    for (std::size_t p = s.find(word, from); p != std::string::npos;
         p = s.find(word, p + 1)) {
        bool leftOk = p == 0 || !isIdentChar(s[p - 1]);
        std::size_t end = p + word.size();
        bool rightOk = end >= s.size() || !isIdentChar(s[end]);
        if (leftOk && rightOk)
            return p;
    }
    return std::string::npos;
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

/** Last non-space character before @p pos, or '\0'. */
char
prevNonSpace(const std::string &s, std::size_t pos)
{
    while (pos > 0) {
        char c = s[--pos];
        if (c != ' ' && c != '\t')
            return c;
    }
    return '\0';
}

/** True if the identifier ending just before @p pos equals @p id. */
bool
precededByWord(const std::string &s, std::size_t pos,
               const char *id)
{
    std::size_t e = pos;
    while (e > 0 &&
           (s[e - 1] == ' ' || s[e - 1] == '\t'))
        --e;
    std::size_t b = e;
    while (b > 0 && isIdentChar(s[b - 1]))
        --b;
    return s.compare(b, e - b, id) == 0 && e > b;
}

std::uint64_t
fnv1a(const std::string &s, std::uint64_t h = 0xcbf29ce484222325ull)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

// ---------------------------------------------------------------
// Per-file scanner
// ---------------------------------------------------------------

/** One physical line split into code and comment text. */
struct SplitLine
{
    std::string code;    ///< literals blanked, comments removed
    std::string comment; ///< concatenated comment text
    bool commentOnly = false;
};

/**
 * Split a file into code/comment channels. Tracks block comments
 * across lines; string and char literals are blanked out of the
 * code channel so banned tokens inside them never match. Raw
 * strings are not used in this codebase and are treated as plain
 * literals.
 */
std::vector<SplitLine>
splitLines(const std::vector<std::string> &lines)
{
    std::vector<SplitLine> out(lines.size());
    bool inBlock = false;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string &ln = lines[i];
        std::string code, comment;
        bool sawCode = false;
        for (std::size_t p = 0; p < ln.size();) {
            if (inBlock) {
                std::size_t e = ln.find("*/", p);
                if (e == std::string::npos) {
                    comment += ln.substr(p);
                    p = ln.size();
                } else {
                    comment += ln.substr(p, e - p);
                    p = e + 2;
                    inBlock = false;
                }
                continue;
            }
            char c = ln[p];
            if (c == '/' && p + 1 < ln.size() && ln[p + 1] == '/') {
                comment += ln.substr(p + 2);
                break;
            }
            if (c == '/' && p + 1 < ln.size() && ln[p + 1] == '*') {
                inBlock = true;
                p += 2;
                continue;
            }
            if (c == '"' || c == '\'') {
                char q = c;
                code += q;
                ++p;
                while (p < ln.size()) {
                    if (ln[p] == '\\' && p + 1 < ln.size()) {
                        p += 2;
                        continue;
                    }
                    if (ln[p] == q) {
                        ++p;
                        break;
                    }
                    ++p;
                }
                code += q;
                sawCode = true;
                continue;
            }
            code += c;
            if (c != ' ' && c != '\t')
                sawCode = true;
            ++p;
        }
        out[i].code = std::move(code);
        out[i].comment = std::move(comment);
        out[i].commentOnly = !sawCode && !out[i].comment.empty();
    }
    return out;
}

/**
 * The directive token, assembled so this file's own comments never
 * register as directives. Prose mentioning the tool name does not
 * match: only the exact "<tool>: allow(" spelling is a directive.
 */
const std::string kDirective =
    std::string("cenju-") + "lint: allow(";

/** Parse allow() directives out of the comment channel. */
std::vector<AllowDirective>
parseAllows(const std::vector<SplitLine> &split)
{
    std::vector<AllowDirective> allows;
    for (std::size_t i = 0; i < split.size(); ++i) {
        const std::string &c = split[i].comment;
        std::size_t p = c.find(kDirective);
        if (p == std::string::npos)
            continue;
        AllowDirective a;
        a.line = static_cast<int>(i + 1);
        a.appliesTo = static_cast<int>(i + 1);
        if (split[i].commentOnly) {
            // A standalone comment governs the next code line;
            // wrapped justifications and blank separators between
            // the directive and the code do not break the binding.
            std::size_t j = i + 1;
            while (j < split.size() &&
                   (split[j].commentOnly ||
                    trim(split[j].code).empty()))
                ++j;
            a.appliesTo = static_cast<int>(j + 1);
        }
        std::size_t q = p + kDirective.size() - 6;
        std::size_t r = c.find(')', q);
        if (r == std::string::npos) {
            allows.push_back(a);
            continue;
        }
        a.rule = trim(c.substr(q + 6, r - q - 6));
        a.known = knownRule(a.rule);
        std::string just = c.substr(r + 1);
        std::size_t b = just.find_first_not_of(" \t:-");
        a.justified =
            b != std::string::npos && just.size() - b >= 10;
        allows.push_back(a);
    }
    return allows;
}

/**
 * Collect names declared as unordered containers in @p split (for
 * D003). Handles declarations whose template arguments span lines:
 * angle brackets are matched across the joined code channel.
 */
std::set<std::string>
unorderedDeclNames(const std::vector<SplitLine> &split)
{
    std::string joined;
    for (const SplitLine &l : split) {
        joined += l.code;
        joined += '\n';
    }
    std::set<std::string> names;
    for (const char *kw : {"unordered_map", "unordered_set"}) {
        for (std::size_t p = findWord(joined, kw);
             p != std::string::npos;
             p = findWord(joined, kw, p + 1)) {
            std::size_t lt = joined.find('<', p);
            if (lt == std::string::npos)
                continue;
            int depth = 0;
            std::size_t q = lt;
            for (; q < joined.size(); ++q) {
                if (joined[q] == '<')
                    ++depth;
                else if (joined[q] == '>' && --depth == 0)
                    break;
            }
            if (q >= joined.size())
                continue;
            // Next identifier after the closing '>' is the declared
            // name (skips nothing for using-aliases/params, which
            // simply yield no identifier before a ';' or ',').
            std::size_t r = q + 1;
            while (r < joined.size() &&
                   (joined[r] == ' ' || joined[r] == '\t' ||
                    joined[r] == '\n' || joined[r] == '&' ||
                    joined[r] == '*'))
                ++r;
            std::size_t b = r;
            while (r < joined.size() && isIdentChar(joined[r]))
                ++r;
            if (r > b)
                names.insert(joined.substr(b, r - b));
        }
    }
    return names;
}

/** Extract the template argument text of a container at @p kwPos. */
std::string
templateArgsAt(const std::vector<SplitLine> &split, std::size_t row,
               std::size_t kwPos)
{
    std::string acc;
    int depth = 0;
    bool started = false;
    for (std::size_t i = row; i < split.size() && i < row + 8; ++i) {
        const std::string &code = split[i].code;
        std::size_t p = i == row ? kwPos : 0;
        for (; p < code.size(); ++p) {
            if (code[p] == '<') {
                ++depth;
                started = true;
            } else if (code[p] == '>') {
                if (--depth == 0)
                    return acc;
            }
            if (started)
                acc += code[p];
        }
        acc += ' ';
    }
    return acc;
}

struct FileReport
{
    std::vector<Diag> diags;
    std::vector<AllowDirective> allows;
};

struct ScanContext
{
    std::string relPath; ///< repo-relative, '/'-separated
    std::string module;  ///< src module name, or "" for drivers
    bool isDriver = false;
};

void
addDiag(FileReport &rep, const ScanContext &ctx, int line,
        const char *rule, const std::string &msg,
        const std::string &lineText)
{
    rep.diags.push_back({ctx.relPath, line, rule, msg, lineText});
}

void
scanIncludes(FileReport &rep, const ScanContext &ctx,
             const std::vector<std::string> &lines,
             const std::vector<SplitLine> &split)
{
    if (ctx.isDriver)
        return;
    auto dag = kLayerDag.find(ctx.module);
    if (dag == kLayerDag.end()) {
        addDiag(rep, ctx, 1, "L003",
                "directory src/" + ctx.module +
                    " is not registered in the layering DAG",
                lines.empty() ? "" : lines[0]);
        return;
    }
    for (std::size_t i = 0; i < split.size(); ++i) {
        // The code channel blanks string literals, so detect the
        // directive there but read the path from the raw line.
        if (split[i].code.find("#include") == std::string::npos)
            continue;
        const std::string &raw = lines[i];
        std::size_t h = raw.find("#include \"");
        if (h == std::string::npos)
            continue;
        std::size_t b = h + 10;
        std::size_t e = raw.find('"', b);
        if (e == std::string::npos)
            continue;
        std::string inc = raw.substr(b, e - b);
        std::size_t slash = inc.find('/');
        if (slash == std::string::npos)
            continue; // module-local include
        std::string target = inc.substr(0, slash);
        if (kLayerDag.find(target) == kLayerDag.end())
            continue; // not a src module (e.g. kernels/)
        if (target == ctx.module)
            continue;
        int ln = static_cast<int>(i + 1);
        if (ctx.module == "transport" && target == "network") {
            if (!kSeamFiles.count(ctx.relPath))
                addDiag(rep, ctx, ln, "L002",
                        "only the multistage backend may include "
                        "network/ from src/transport",
                        lines[i]);
            continue;
        }
        if (!dag->second.count(target))
            addDiag(rep, ctx, ln, "L001",
                    "src/" + ctx.module +
                        " may not include \"" + inc +
                        "\" (edge " + ctx.module + " -> " + target +
                        " is not in the layering DAG)",
                    lines[i]);
    }
}

void
scanAllocRules(FileReport &rep, const ScanContext &ctx,
               const std::vector<std::string> &lines,
               const std::vector<SplitLine> &split)
{
    bool pool = !ctx.isDriver && kPoolGoverned.count(ctx.module);
    for (std::size_t i = 0; i < split.size(); ++i) {
        const std::string &code = split[i].code;
        int ln = static_cast<int>(i + 1);
        if (trim(code).rfind('#', 0) == 0)
            continue; // preprocessor (e.g. #include <new>)

        // A001: C allocation, everywhere (drivers included).
        for (const char *fn :
             {"malloc", "calloc", "realloc", "free"}) {
            std::size_t p = findWord(code, fn);
            if (p != std::string::npos &&
                code.find('(', p) == p + std::strlen(fn) &&
                prevNonSpace(code, p) != '.' &&
                !precededByWord(code, p, "operator"))
                addDiag(rep, ctx, ln, "A001",
                        std::string(fn) + "() is banned; use "
                        "pooled or RAII allocation",
                        lines[i]);
        }
        if (!pool)
            continue;

        // A002: std::function where InlineFunction is mandated.
        if (findWord(code, "function") != std::string::npos &&
            code.find("std::function") != std::string::npos)
            addDiag(rep, ctx, ln, "A002",
                    "std::function heap-allocates large captures; "
                    "use InlineFunction on pool-governed paths",
                    lines[i]);

        // A003: shared ownership on hot paths.
        for (const char *id : {"shared_ptr", "make_shared"}) {
            if (findWord(code, id) != std::string::npos) {
                addDiag(rep, ctx, ln, "A003",
                        std::string(id) +
                            " in a pool-governed module; prefer "
                            "pooled/unique ownership",
                        lines[i]);
                break;
            }
        }

        // A004: unordered containers must hash with U64MixHash.
        for (const char *kw : {"unordered_map", "unordered_set"}) {
            std::size_t p = findWord(code, kw);
            if (p == std::string::npos)
                continue;
            if (prevNonSpace(code, p) == '<' ||
                code.find('<', p) != p + std::strlen(kw))
                continue; // mention, not a declaration
            std::string args = templateArgsAt(split, i, p);
            if (args.find("U64MixHash") == std::string::npos)
                addDiag(rep, ctx, ln, "A004",
                        std::string(kw) +
                            " without U64MixHash: std::hash is the "
                            "identity on integers and clusters hot "
                            "tables (docs/PERF.md)",
                        lines[i]);
        }

        // A005: naked new / delete (every occurrence on the line:
        // a placement ::new can hide a boxing `new` to its right).
        for (std::size_t p = findWord(code, "new");
             p != std::string::npos;
             p = findWord(code, "new", p + 1)) {
            char before = prevNonSpace(code, p);
            bool placement = before == ':'; // ::new
            bool opDecl = precededByWord(code, p, "operator");
            if (!placement && !opDecl) {
                addDiag(rep, ctx, ln, "A005",
                        "naked new in a pool-governed module; use "
                        "Pooled<T>/make_unique/containers",
                        lines[i]);
                break;
            }
        }
        for (std::size_t p = findWord(code, "delete");
             p != std::string::npos;
             p = findWord(code, "delete", p + 1)) {
            char before = prevNonSpace(code, p);
            bool deleted = before == '=';  // = delete
            bool opDecl = precededByWord(code, p, "operator") ||
                          before == ':'; // ::operator delete
            if (!deleted && !opDecl) {
                addDiag(rep, ctx, ln, "A005",
                        "naked delete in a pool-governed module; "
                        "let pooled/unique owners release storage",
                        lines[i]);
                break;
            }
        }
    }
}

void
scanDeterminismRules(FileReport &rep, const ScanContext &ctx,
                     const std::vector<std::string> &lines,
                     const std::vector<SplitLine> &split,
                     const std::set<std::string> &unorderedNames)
{
    if (ctx.isDriver || !kDigestAffecting.count(ctx.module))
        return;
    for (std::size_t i = 0; i < split.size(); ++i) {
        const std::string &code = split[i].code;
        int ln = static_cast<int>(i + 1);

        // D001: nondeterminism sources. Function-like tokens must
        // be calls; type-like tokens match as identifiers.
        for (const char *fn :
             {"rand", "srand", "time", "clock", "gettimeofday"}) {
            std::size_t p = findWord(code, fn);
            if (p != std::string::npos &&
                code.find('(', p) == p + std::strlen(fn) &&
                prevNonSpace(code, p) != '.')
                addDiag(rep, ctx, ln, "D001",
                        std::string(fn) + "() breaks bit-identical "
                        "replay; use sim/rng.hh streams",
                        lines[i]);
        }
        for (const char *ty :
             {"random_device", "mt19937", "steady_clock",
              "system_clock", "high_resolution_clock"}) {
            if (findWord(code, ty) != std::string::npos)
                addDiag(rep, ctx, ln, "D001",
                        std::string(ty) + " is nondeterministic or "
                        "stdlib-dependent; use sim/rng.hh",
                        lines[i]);
        }
        for (const char *hdr :
             {"#include <random>", "#include <chrono>",
              "#include <ctime>"}) {
            if (code.find(hdr) != std::string::npos)
                addDiag(rep, ctx, ln, "D001",
                        std::string(hdr) + " in simulation code; "
                        "wall-clock and stdlib RNG are banned here",
                        lines[i]);
        }

        // D002: pointer-keyed associative containers.
        for (const char *kw : {"map", "set", "unordered_map",
                               "unordered_set"}) {
            std::size_t p = findWord(code, kw);
            if (p == std::string::npos)
                continue;
            if (code.find('<', p) != p + std::strlen(kw))
                continue;
            std::string args = templateArgsAt(split, i, p);
            // First template argument only.
            int depth = 0;
            std::size_t cut = args.size();
            for (std::size_t q = 0; q < args.size(); ++q) {
                if (args[q] == '<')
                    ++depth;
                else if (args[q] == '>')
                    --depth;
                else if (args[q] == ',' && depth <= 1) {
                    cut = q;
                    break;
                }
            }
            std::string first = trim(args.substr(1, cut - 1));
            if (!first.empty() && first.back() == '*')
                addDiag(rep, ctx, ln, "D002",
                        "pointer-keyed " + std::string(kw) +
                            ": ordering/iteration follows heap "
                            "addresses across runs",
                        lines[i]);
        }

        // D003: range-for over an unordered container.
        std::size_t f = findWord(code, "for");
        if (f != std::string::npos) {
            std::size_t colon = code.find(" : ", f);
            if (colon != std::string::npos) {
                std::string range =
                    trim(code.substr(colon + 3));
                while (!range.empty() &&
                       (range.back() == ')' || range.back() == '{' ||
                        range.back() == ' '))
                    range.pop_back();
                if (range.rfind("this->", 0) == 0)
                    range = range.substr(6);
                if (!range.empty() && unorderedNames.count(range))
                    addDiag(rep, ctx, ln, "D003",
                            "iterating unordered container '" +
                                range + "' — order is hash-layout "
                                "dependent and can leak into "
                                "digests",
                            lines[i]);
            }
        }
    }
}

// ---------------------------------------------------------------
// Driver
// ---------------------------------------------------------------

std::vector<std::string>
readLines(const fs::path &p)
{
    std::ifstream in(p);
    std::vector<std::string> lines;
    std::string ln;
    while (std::getline(in, ln)) {
        if (!ln.empty() && ln.back() == '\r')
            ln.pop_back();
        lines.push_back(ln);
    }
    return lines;
}

std::string
relativeTo(const fs::path &file, const fs::path &root)
{
    std::error_code ec;
    fs::path rel = fs::relative(file, root, ec);
    std::string s = (ec || rel.empty() ? file : rel)
                        .generic_string();
    while (s.rfind("../", 0) == 0)
        s = s.substr(3);
    return s;
}

ScanContext
classify(const std::string &relPath)
{
    ScanContext ctx;
    ctx.relPath = relPath;
    if (relPath.rfind("src/", 0) == 0) {
        std::size_t e = relPath.find('/', 4);
        ctx.module = relPath.substr(
            4, e == std::string::npos ? std::string::npos : e - 4);
        ctx.isDriver = false;
    } else {
        ctx.isDriver = true;
    }
    return ctx;
}

bool
lintableFile(const fs::path &p)
{
    std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".h" || ext == ".hpp";
}

/** Scan one file; sibling header/source feeds the D003 name set. */
FileReport
scanFile(const fs::path &file, const fs::path &root)
{
    FileReport rep;
    ScanContext ctx = classify(relativeTo(file, root));
    std::vector<std::string> lines = readLines(file);
    std::vector<SplitLine> split = splitLines(lines);
    rep.allows = parseAllows(split);

    std::set<std::string> names = unorderedDeclNames(split);
    for (const char *sibExt : {".hh", ".cc"}) {
        fs::path sib = file;
        sib.replace_extension(sibExt);
        if (sib != file && fs::exists(sib)) {
            auto sibNames =
                unorderedDeclNames(splitLines(readLines(sib)));
            names.insert(sibNames.begin(), sibNames.end());
        }
    }

    scanIncludes(rep, ctx, lines, split);
    scanAllocRules(rep, ctx, lines, split);
    scanDeterminismRules(rep, ctx, lines, split, names);
    return rep;
}

/** Apply allow() directives; malformed/stale ones become X-diags. */
std::vector<Diag>
applyAllows(FileReport &rep, const std::string &relPath,
            const std::vector<std::string> &lines)
{
    std::vector<Diag> out;
    for (Diag &d : rep.diags) {
        bool suppressed = false;
        for (AllowDirective &a : rep.allows) {
            if (a.known && a.justified && a.rule == d.rule &&
                a.appliesTo == d.line) {
                a.used = true;
                suppressed = true;
            }
        }
        if (!suppressed)
            out.push_back(std::move(d));
    }
    for (const AllowDirective &a : rep.allows) {
        std::string text =
            a.line <= static_cast<int>(lines.size())
                ? lines[a.line - 1]
                : "";
        if (!a.known || !a.justified) {
            out.push_back(
                {relPath, a.line, "X001",
                 a.rule.empty()
                     ? "malformed directive: expected allow(<rule>)"
                     : (!a.known
                            ? "unknown rule '" + a.rule + "'"
                            : "exemption for " + a.rule +
                                  " carries no justification "
                                  "(state why the rule does not "
                                  "apply)"),
                 text});
        } else if (!a.used) {
            out.push_back({relPath, a.line, "X002",
                           "exemption for " + a.rule +
                               " suppresses nothing; remove it",
                           text});
        }
    }
    return out;
}

std::string
fingerprint(const Diag &d)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fnv1a(
                      d.rule + "|" + d.file + "|" +
                      trim(d.lineText))));
    return buf;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: cenju-lint [options] [paths...]\n"
        "  paths                files or directories (default:\n"
        "                       src tools bench under --repo-root)\n"
        "  --repo-root DIR      repository root for relative\n"
        "                       paths and scope rules (default .)\n"
        "  --compdb FILE        take the file list from a\n"
        "                       compile_commands.json\n"
        "  --baseline FILE      suppress fingerprints in FILE\n"
        "  --write-baseline FILE  record current diagnostics\n"
        "  --list-rules         print the rule catalog\n"
        "  --version            print the catalog version\n"
        "exit: 0 clean, 1 diagnostics, 2 usage/io error\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = ".";
    std::string compdb, baselineFile, writeBaselineFile;
    std::vector<fs::path> paths;
    bool listRules = false;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto val = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (a == "--repo-root") {
            const char *v = val();
            if (!v)
                return usage();
            root = v;
        } else if (a == "--compdb") {
            const char *v = val();
            if (!v)
                return usage();
            compdb = v;
        } else if (a == "--baseline") {
            const char *v = val();
            if (!v)
                return usage();
            baselineFile = v;
        } else if (a == "--write-baseline") {
            const char *v = val();
            if (!v)
                return usage();
            writeBaselineFile = v;
        } else if (a == "--list-rules") {
            listRules = true;
        } else if (a == "--version") {
            std::printf("cenju-lint rule catalog v%s\n",
                        kCatalogVersion);
            return 0;
        } else if (a.rfind("--", 0) == 0) {
            return usage();
        } else {
            paths.emplace_back(a);
        }
    }

    if (listRules) {
        std::printf("cenju-lint rule catalog v%s "
                    "(docs/ANALYSIS.md)\n",
                    kCatalogVersion);
        for (const RuleInfo &r : kRules)
            std::printf("  %s  %s\n", r.id, r.summary);
        return 0;
    }

    // Assemble the file list.
    std::vector<fs::path> files;
    auto addTree = [&](const fs::path &p) {
        if (fs::is_regular_file(p)) {
            if (lintableFile(p))
                files.push_back(p);
            return;
        }
        if (!fs::is_directory(p))
            return;
        for (auto it = fs::recursive_directory_iterator(p);
             it != fs::recursive_directory_iterator(); ++it) {
            std::string name = it->path().filename().string();
            if (it->is_directory() &&
                (name.rfind("build", 0) == 0 || name[0] == '.')) {
                it.disable_recursion_pending();
                continue;
            }
            if (it->is_regular_file() && lintableFile(it->path()))
                files.push_back(it->path());
        }
    };

    if (!compdb.empty()) {
        std::ifstream in(compdb);
        if (!in) {
            std::fprintf(stderr, "cenju-lint: cannot open %s\n",
                         compdb.c_str());
            return 2;
        }
        std::stringstream ss;
        ss << in.rdbuf();
        std::string all = ss.str();
        const std::string key = "\"file\"";
        for (std::size_t p = all.find(key); p != std::string::npos;
             p = all.find(key, p + 1)) {
            std::size_t b = all.find('"', p + key.size() + 1);
            if (b == std::string::npos)
                continue;
            std::size_t e = all.find('"', b + 1);
            if (e == std::string::npos)
                continue;
            fs::path f = all.substr(b + 1, e - b - 1);
            if (lintableFile(f) && fs::exists(f))
                files.push_back(f);
        }
    }
    if (paths.empty() && compdb.empty())
        for (const char *d : {"src", "tools", "bench"})
            addTree(root / d);
    for (const fs::path &p : paths)
        addTree(p);

    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()),
                files.end());
    if (files.empty()) {
        std::fprintf(stderr, "cenju-lint: no input files\n");
        return 2;
    }

    std::set<std::string> baseline;
    if (!baselineFile.empty()) {
        std::ifstream in(baselineFile);
        if (!in) {
            std::fprintf(stderr, "cenju-lint: cannot open %s\n",
                         baselineFile.c_str());
            return 2;
        }
        std::string fp;
        while (in >> fp)
            baseline.insert(fp);
    }

    std::vector<Diag> all;
    for (const fs::path &f : files) {
        FileReport rep = scanFile(f, root);
        std::vector<std::string> lines = readLines(f);
        std::vector<Diag> diags =
            applyAllows(rep, relativeTo(f, root), lines);
        for (Diag &d : diags)
            if (!baseline.count(fingerprint(d)))
                all.push_back(std::move(d));
    }

    std::sort(all.begin(), all.end(),
              [](const Diag &a, const Diag &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });

    if (!writeBaselineFile.empty()) {
        std::ofstream out(writeBaselineFile);
        for (const Diag &d : all)
            out << fingerprint(d) << " # " << d.file << ":"
                << d.line << " " << d.rule << "\n";
        std::fprintf(stderr,
                     "cenju-lint: wrote %zu fingerprints to %s\n",
                     all.size(), writeBaselineFile.c_str());
        return 0;
    }

    for (const Diag &d : all)
        std::printf("%s:%d: [%s] %s\n", d.file.c_str(), d.line,
                    d.rule.c_str(), d.msg.c_str());
    std::fprintf(stderr,
                 "cenju-lint: %zu file(s), %zu diagnostic(s), "
                 "catalog v%s\n",
                 files.size(), all.size(), kCatalogVersion);
    return all.empty() ? 0 : 1;
}
