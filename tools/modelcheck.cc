/**
 * @file
 * Model-checker CLI for the coherence protocol (docs/CHECKING.md).
 *
 * Exhaustively explores the reachable protocol states of a small
 * configuration, reports the state count, and writes any
 * counterexample as a replayable text trace:
 *
 *   modelcheck --nodes 3 --blocks 1
 *   modelcheck --nodes 2 --blocks 1 --bug skip-reservation \
 *              --trace-out cex.trace
 *   modelcheck --replay cex.trace
 *
 * The replay path rebuilds a full DsmSystem from the trace header
 * and re-runs the interleaving with a panicking invariant checker
 * attached, so a violation reproduces under a debugger.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "check/explorer.hh"
#include "core/dsm_system.hh"
#include "cli.hh"

using namespace cenju;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --nodes N         system size, 2..4 (default 2)\n"
        "  --blocks N        shared blocks, 1..2 (default 1)\n"
        "  --concurrency N   max racing ops per step (default 2)\n"
        "  --depth N         max steps per trace, 0=closure "
        "(default 0)\n"
        "  --max-states N    stop after N states, 0=unlimited\n"
        "  --protocol P      queuing | nack | phase-priority "
        "(default queuing)\n"
        "  --max-phase N     phase-priority: epoch advances "
        "enumerated per node (default 1)\n"
        "  --bug B           none | skip-reservation | drop-sharer\n"
        "  --all             keep going after a counterexample\n"
        "  --trace-out FILE  write the first counterexample trace\n"
        "  --replay FILE     replay a trace through DsmSystem\n",
        argv0);
    return 2;
}

int
replayFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    check::Trace trace;
    std::string err;
    if (!check::parseTrace(text.str(), trace, err)) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     err.c_str());
        return 2;
    }

    std::printf("replaying %zu batches (%zu ops) on %u nodes, "
                "bug=%s\n",
                trace.batches.size(), trace.opCount(),
                trace.cfg.nodes, protoBugName(trace.cfg.bug));
    SystemConfig sc;
    sc.numNodes = trace.cfg.nodes;
    sc.proto.protocol = trace.cfg.protocol;
    sc.proto.injectBug = trace.cfg.bug;
    sc.proto.runtimeChecks = true; // panic at the violation
    DsmSystem sys(sc);
    bool done = sys.replayTrace(trace);
    if (!done) {
        std::printf("replay FAILED: an operation starved (see "
                    "diagnosis above)\n");
        return 1;
    }
    std::printf("replay completed with no violation\n");
    return 0;
}

void
printCounterexample(const check::Counterexample &cex)
{
    std::printf("counterexample (%zu batches):\n",
                cex.trace.batches.size());
    std::printf("%s", check::serializeTrace(cex.trace).c_str());
    for (const check::Violation &v : cex.violations) {
        std::printf("  violated [%s] @%llu: %s\n",
                    v.invariant.c_str(),
                    (unsigned long long)v.when,
                    v.detail.c_str());
    }
    if (!cex.stallDiagnosis.empty())
        std::printf("stall diagnosis:\n%s",
                    cex.stallDiagnosis.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    check::ExplorerOptions opt;
    std::string trace_out;
    std::string replay;

    cli::OptionParser args(argc, argv);
    while (args.next()) {
        if (args.is("--nodes")) {
            opt.cfg.nodes = args.u32();
        } else if (args.is("--blocks")) {
            opt.cfg.blocks = args.u32();
        } else if (args.is("--concurrency")) {
            opt.concurrency = args.u32();
        } else if (args.is("--depth")) {
            opt.maxDepth = args.u32();
        } else if (args.is("--max-states")) {
            opt.maxStates = args.u64();
        } else if (args.is("--protocol")) {
            std::string p = args.value();
            if (!protocolKindFromName(p.c_str(),
                                      opt.cfg.protocol))
                return usage(argv[0]);
        } else if (args.is("--max-phase")) {
            opt.maxPhase = args.u32();
        } else if (args.is("--bug")) {
            std::string b = args.value();
            if (b == "none") {
                opt.cfg.bug = ProtoBug::None;
            } else if (b == "skip-reservation") {
                opt.cfg.bug = ProtoBug::SkipReservation;
            } else if (b == "drop-sharer") {
                opt.cfg.bug = ProtoBug::DropSharer;
            } else {
                return usage(argv[0]);
            }
        } else if (args.is("--all")) {
            opt.stopAtFirstViolation = false;
        } else if (args.is("--trace-out")) {
            trace_out = args.value();
        } else if (args.is("--replay")) {
            replay = args.value();
        } else {
            return usage(argv[0]);
        }
    }

    if (!replay.empty())
        return replayFile(replay);

    if (opt.cfg.nodes < 2 || opt.cfg.nodes > 4 ||
        opt.cfg.blocks < 1 || opt.cfg.blocks > 2) {
        std::fprintf(stderr,
                     "exhaustive exploration is meant for 2..4 "
                     "nodes and 1..2 blocks\n");
        return 2;
    }

    std::printf("exploring %u nodes x %u blocks, protocol=%s, "
                "bug=%s, concurrency=%u, depth=%s\n",
                opt.cfg.nodes, opt.cfg.blocks,
                protocolKindName(opt.cfg.protocol),
                protoBugName(opt.cfg.bug), opt.concurrency,
                opt.maxDepth
                    ? std::to_string(opt.maxDepth).c_str()
                    : "closure");

    check::ExploreResult res = check::explore(opt, &std::cout);

    std::printf("reachable states: %llu\n",
                (unsigned long long)res.statesVisited);
    std::printf("transitions replayed: %llu\n",
                (unsigned long long)res.transitions);
    std::printf("engine steps checked: %llu\n",
                (unsigned long long)res.hookSteps);
    std::printf("deepest trace: %llu batches\n",
                (unsigned long long)res.maxTraceDepth);
    std::printf("state space %s\n",
                res.exhausted ? "EXHAUSTED (closed)"
                              : "truncated by bounds");

    if (res.ok()) {
        std::printf("no invariant violations\n");
        return 0;
    }

    std::printf("%zu counterexample(s) found\n",
                res.counterexamples.size());
    for (const auto &cex : res.counterexamples)
        printCounterexample(cex);
    if (!trace_out.empty()) {
        std::ofstream out(trace_out);
        out << check::serializeTrace(
            res.counterexamples.front().trace);
        std::printf("first trace written to %s (replay with "
                    "--replay)\n",
                    trace_out.c_str());
    }
    return 1;
}
