/**
 * @file
 * Fault-injection stress CLI (docs/TESTING.md).
 *
 * Runs randomized multi-node workloads under random-but-legal fault
 * plans with the invariant catalog attached, prints the failing seed
 * on any violation or starvation, replays any seed bit-identically,
 * and shrinks a failing case to a minimal text reproducer:
 *
 *   stress --seeds 200                        # sweep, expect clean
 *   stress --seed 7341                        # one seed, verbose
 *   stress --replay 7341                      # prove determinism
 *   stress --bug skip-reservation --seeds 60 \
 *          --expect-caught --out repro.case   # mutation check
 *   stress --replay-file repro.case           # rerun a reproducer
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fault/stress.hh"
#include "sim/thread_pool.hh"
#include "cli.hh"

using namespace cenju;
using namespace cenju::fault;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --seeds N        seeds to sweep (default 50)\n"
        "  --seed-base S    first seed of the sweep (default 1)\n"
        "  --seed S         run exactly one seed, verbose\n"
        "  --nodes N        system size (default 16)\n"
        "  --pattern P      sharing-heavy | migratory |\n"
        "                   producer-consumer | barrier-churn |\n"
        "                   hot-spot (combinable atomics storm)\n"
        "                   (default: drawn per seed, excluding\n"
        "                   hot-spot)\n"
        "  --bug B          none | skip-reservation | drop-sharer\n"
        "%s%s%s"
        "  --lossy          adversarial loss mode: reliability on,\n"
        "                   random drop/dup/corrupt windows per\n"
        "                   seed, finals compared bit-for-bit with\n"
        "                   the fault-free run of the same seed\n"
        "  --set K=V        override a generated case field, using\n"
        "                   the reproducer keys (nodes, xbcap,\n"
        "                   transport, protocol, reliability, bug,\n"
        "                   pattern, blocks, ops, rounds, wseed);\n"
        "                   repeatable\n"
        "  --budget N       per-run event budget (default %llu)\n"
        "  --replay S       run seed S twice, compare digests\n"
        "  --replay-file F  rerun a serialized reproducer\n"
        "  --no-shrink      skip minimization of a failing case\n"
        "  --jobs N         parallel workers for seed sweeps\n"
        "                   (default 1; 0 = hardware threads)\n"
        "  --shards N       simulation shards per run (default 1;\n"
        "                   digests are bit-identical across shard\n"
        "                   counts, see docs/ARCHITECTURE.md)\n"
        "  --expect-caught  exit 0 iff the sweep found a failure\n"
        "  --out FILE       write the minimal reproducer to FILE\n",
        argv0, cli::transportHelp, cli::protocolHelp,
        cli::reliabilityHelp,
        (unsigned long long)defaultEventBudget);
    return 2;
}

void
printResult(std::uint64_t seed, const StressCase &c,
            const StressResult &r)
{
    std::printf("seed %llu: pattern=%s nodes=%u xbcap=%u blocks=%u "
                "ops=%u rounds=%u faults=%zu | %s, %llu steps, "
                "%llu events, %u windows, digest=%016llx\n",
                (unsigned long long)seed,
                stressPatternName(c.workload.pattern), c.nodes,
                c.xbCapacity, c.workload.blocks,
                c.workload.opsPerNode, c.workload.rounds,
                c.plan.events.size(),
                r.completed ? "completed"
                            : (r.budgetHit ? "BUDGET" : "STARVED"),
                (unsigned long long)r.steps,
                (unsigned long long)r.events, r.faultWindows,
                (unsigned long long)r.digest);
    if (r.retransmits || r.dupDiscards || r.checksumRejects ||
        r.linkDead)
        std::printf("  reliable: %llu retransmits, %llu dup "
                    "discards, %llu checksum rejects%s\n",
                    (unsigned long long)r.retransmits,
                    (unsigned long long)r.dupDiscards,
                    (unsigned long long)r.checksumRejects,
                    r.linkDead ? ", LINK DEAD" : "");
    for (const check::Violation &v : r.violations) {
        std::printf("  violated [%s] @%llu: %s\n",
                    v.invariant.c_str(),
                    (unsigned long long)v.when, v.detail.c_str());
    }
    if (!r.stallDiagnosis.empty())
        std::printf("stall diagnosis:\n%s",
                    r.stallDiagnosis.c_str());
}

struct Options
{
    std::uint64_t seeds = 50;
    std::uint64_t seedBase = 1;
    std::uint64_t budget = defaultEventBudget;
    bool singleSeed = false;
    std::uint64_t seed = 0;
    bool replay = false;
    std::string replayFile;
    bool shrink = true;
    bool expectCaught = false;
    unsigned jobs = 1;
    unsigned shards = 1;
    std::string outFile;
    /** --set overrides, applied to every case after derivation. */
    std::vector<std::pair<std::string, std::string>> overrides;
    StressOptions gen;
};

/** Derive the case for @p seed and apply the --set overrides. */
StressCase
caseFor(std::uint64_t seed, const Options &opt)
{
    StressCase c = makeStressCase(seed, opt.gen);
    for (const auto &[key, value] : opt.overrides) {
        std::string err;
        if (!applyCaseKey(c, key, value, err)) {
            std::fprintf(stderr, "--set %s=%s: %s\n", key.c_str(),
                         value.c_str(), err.c_str());
            std::exit(2);
        }
    }
    return c;
}

/** Shrink, report, and optionally save a failing case. */
void
handleFailure(std::uint64_t seed, const StressCase &c,
              const Options &opt)
{
    // Shrinking (and the minimal-case rerun) always executes
    // sequentially: per-step invariant checks only exist there, so
    // the verdicts driving the shrink stay maximally sensitive.
    StressCase minimal = c;
    if (opt.shrink) {
        ShrinkStats st;
        minimal = shrinkCase(c, opt.budget, 400, &st);
        std::printf("shrunk with %u runs (%u accepted): %u nodes, "
                    "%zu fault events, %u ops x %u rounds\n",
                    st.runs, st.accepts, minimal.nodes,
                    minimal.plan.events.size(),
                    minimal.workload.opsPerNode,
                    minimal.workload.rounds);
        StressResult mr = runStressCase(minimal, opt.budget);
        std::printf("minimal reproducer (replay with "
                    "--replay-file):\n%s",
                    serializeCase(minimal).c_str());
        printResult(seed, minimal, mr);
    } else {
        std::printf("reproducer (replay with --replay-file):\n%s",
                    serializeCase(minimal).c_str());
    }
    if (!opt.outFile.empty()) {
        std::ofstream out(opt.outFile);
        out << serializeCase(minimal);
        std::printf("reproducer written to %s\n",
                    opt.outFile.c_str());
    }
}

int
replaySeed(const Options &opt)
{
    StressCase c = caseFor(opt.seed, opt);
    StressResult a = runStressCase(c, opt.budget, opt.shards);
    StressResult b = runStressCase(c, opt.budget, opt.shards);
    printResult(opt.seed, c, a);
    if (a.digest != b.digest || a.steps != b.steps ||
        a.events != b.events) {
        std::printf("REPLAY DIVERGED: %016llx/%llu/%llu vs "
                    "%016llx/%llu/%llu\n",
                    (unsigned long long)a.digest,
                    (unsigned long long)a.steps,
                    (unsigned long long)a.events,
                    (unsigned long long)b.digest,
                    (unsigned long long)b.steps,
                    (unsigned long long)b.events);
        return 1;
    }
    std::printf("replay bit-identical (digest %016llx over %llu "
                "steps)\n",
                (unsigned long long)a.digest,
                (unsigned long long)a.steps);
    return 0;
}

int
replayFromFile(const Options &opt)
{
    std::ifstream in(opt.replayFile);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n",
                     opt.replayFile.c_str());
        return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    StressCase c;
    std::string err;
    if (!parseCase(text.str(), c, err)) {
        std::fprintf(stderr, "%s: %s\n", opt.replayFile.c_str(),
                     err.c_str());
        return 2;
    }
    StressResult r = runStressCase(c, opt.budget, opt.shards);
    printResult(0, c, r);
    return r.failed() ? 1 : 0;
}

/** Baseline of a lossy case: the same case, loss events stripped. */
StressCase
stripLoss(const StressCase &c)
{
    StressCase b = c;
    b.plan.events.erase(
        std::remove_if(
            b.plan.events.begin(), b.plan.events.end(),
            [](const FaultEvent &e) { return isLossFault(e.kind); }),
        b.plan.events.end());
    return b;
}

struct LossyPair
{
    StressResult lossy;
    StressResult base;
};

/**
 * The lossy oracle: every seed runs twice — under its loss plan and
 * with the loss events stripped — and the final shared memory must
 * be bit-identical, proving the reliability layer hid every drop,
 * duplicate and corruption. Pinned to the producer-consumer pattern:
 * its finals are deterministic, so a fingerprint mismatch is loss
 * damage, never scheduling noise from racing writers.
 */
int
lossySweep(const Options &optIn)
{
    Options opt = optIn;
    if (opt.gen.patternFixed &&
        opt.gen.pattern != StressPattern::ProducerConsumer)
        std::fprintf(stderr,
                     "note: --lossy pins the producer-consumer "
                     "pattern (deterministic finals); ignoring "
                     "--pattern\n");
    opt.gen.patternFixed = true;
    opt.gen.pattern = StressPattern::ProducerConsumer;

    std::uint64_t seeds = opt.singleSeed ? 1 : opt.seeds;
    std::uint64_t base = opt.singleSeed ? opt.seed : opt.seedBase;
    std::printf("lossy sweep: %llu seeds from %llu, nodes=%u "
                "transport=%s protocol=%s, finals vs fault-free "
                "baseline\n",
                (unsigned long long)seeds,
                (unsigned long long)base, opt.gen.nodes,
                transportKindName(opt.gen.transport),
                protocolKindName(opt.gen.protocol));

    std::vector<LossyPair> sweep(seeds);
    auto runPair = [&opt](std::uint64_t seed, LossyPair &p) {
        StressCase c = caseFor(seed, opt);
        p.lossy = runStressCase(c, opt.budget);
        p.base = runStressCase(stripLoss(c), opt.budget);
    };
    if (opt.jobs != 1) {
        ThreadPool pool(opt.jobs);
        for (std::uint64_t i = 0; i < seeds; ++i)
            pool.submit([i, base, &runPair, &sweep] {
                runPair(base + i, sweep[i]);
            });
        pool.wait();
    } else {
        for (std::uint64_t i = 0; i < seeds; ++i)
            runPair(base + i, sweep[i]);
    }

    std::uint64_t clean = 0, retx = 0, dups = 0, cksum = 0;
    for (std::uint64_t i = 0; i < seeds; ++i) {
        std::uint64_t seed = base + i;
        const LossyPair &p = sweep[i];
        retx += p.lossy.retransmits;
        dups += p.lossy.dupDiscards;
        cksum += p.lossy.checksumRejects;
        bool mismatch =
            p.lossy.memFingerprint != p.base.memFingerprint;
        bool bad = p.lossy.failed() || p.base.failed() || mismatch;
        if (opt.singleSeed || bad) {
            StressCase c = caseFor(seed, opt);
            printResult(seed, c, p.lossy);
            std::printf("  finals %s: lossy %016llx vs fault-free "
                        "%016llx\n",
                        mismatch ? "DIVERGED" : "match",
                        (unsigned long long)p.lossy.memFingerprint,
                        (unsigned long long)p.base.memFingerprint);
        }
        if (!bad) {
            ++clean;
            continue;
        }
        std::printf("FAILING SEED %llu (replay with --lossy "
                    "--seed %llu)\n",
                    (unsigned long long)seed,
                    (unsigned long long)seed);
        StressCase c = caseFor(seed, opt);
        if (p.base.failed()) {
            std::printf("the fault-free baseline itself failed — "
                        "not a reliability bug:\n");
            printResult(seed, stripLoss(c), p.base);
        }
        if (p.lossy.failed()) {
            handleFailure(seed, c, opt);
        } else {
            // A pure fingerprint divergence: the shrinker's verdict
            // (failed()) cannot see it, so save the case unshrunk.
            std::printf("reproducer (replay with --replay-file):"
                        "\n%s",
                        serializeCase(c).c_str());
            if (!opt.outFile.empty()) {
                std::ofstream out(opt.outFile);
                out << serializeCase(c);
                std::printf("reproducer written to %s\n",
                            opt.outFile.c_str());
            }
        }
        return 1;
    }
    std::printf("%llu/%llu lossy seeds clean: finals identical to "
                "fault-free baselines (%llu retransmits, %llu dup "
                "discards, %llu checksum rejects)\n",
                (unsigned long long)clean,
                (unsigned long long)seeds,
                (unsigned long long)retx, (unsigned long long)dups,
                (unsigned long long)cksum);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;

    cli::OptionParser args(argc, argv);
    while (args.next()) {
        if (args.is("--seeds")) {
            opt.seeds = args.u64();
        } else if (args.is("--seed-base")) {
            opt.seedBase = args.u64();
        } else if (args.is("--seed")) {
            opt.singleSeed = true;
            opt.seed = args.u64();
        } else if (args.is("--nodes")) {
            opt.gen.nodes = args.u32();
        } else if (args.is("--pattern")) {
            opt.gen.patternFixed = true;
            if (!stressPatternFromName(args.value(),
                                       opt.gen.pattern))
                return usage(argv[0]);
        } else if (args.is("--bug")) {
            if (!protoBugFromName(args.value(), opt.gen.bug))
                return usage(argv[0]);
        } else if (args.is("--transport")) {
            opt.gen.transport = cli::transportValue(args);
        } else if (args.is("--protocol")) {
            opt.gen.protocol = cli::protocolValue(args);
        } else if (args.is("--reliability")) {
            opt.gen.reliability = cli::reliabilityValue(args);
        } else if (args.is("--lossy")) {
            opt.gen.lossy = true;
        } else if (args.is("--set")) {
            std::string key, value;
            if (!cli::splitKeyValue(args.value(), key, value))
                return usage(argv[0]);
            opt.overrides.emplace_back(std::move(key),
                                       std::move(value));
        } else if (args.is("--budget")) {
            opt.budget = args.u64();
        } else if (args.is("--replay")) {
            opt.replay = true;
            opt.singleSeed = true;
            opt.seed = args.u64();
        } else if (args.is("--replay-file")) {
            opt.replayFile = args.value();
        } else if (args.is("--no-shrink")) {
            opt.shrink = false;
        } else if (args.is("--jobs")) {
            opt.jobs = args.u32();
        } else if (args.is("--shards")) {
            opt.shards = args.u32();
            if (opt.shards == 0)
                opt.shards = 1;
        } else if (args.is("--expect-caught")) {
            opt.expectCaught = true;
        } else if (args.is("--out")) {
            opt.outFile = args.value();
        } else {
            return usage(argv[0]);
        }
    }

    if (opt.gen.nodes < 2) {
        std::fprintf(stderr, "--nodes must be >= 2\n");
        return 2;
    }

    if (opt.shards > 1 &&
        opt.gen.transport == TransportKind::Multistage) {
        // Clamp here (not per run) so a seed sweep warns once.
        std::fprintf(stderr,
                     "note: the multistage fabric has no "
                     "cross-shard latency floor — its tryInject() "
                     "mutates switch state synchronously with the "
                     "sender, so conservative windows would have "
                     "zero lookahead; running with 1 shard (see "
                     "docs/ARCHITECTURE.md, \"Sharded parallel "
                     "simulation\")\n");
        opt.shards = 1;
    }
    if (opt.shards > 1 &&
        (opt.gen.lossy ||
         opt.gen.reliability == ReliabilityKind::E2e)) {
        // The wrapper has no cross-shard latency floor either; clamp
        // once here instead of warning on every run of a sweep.
        std::fprintf(stderr,
                     "note: the reliability decorator runs "
                     "sequentially; running with 1 shard\n");
        opt.shards = 1;
    }
    if (opt.shards > 1 && opt.gen.bug != ProtoBug::None)
        std::fprintf(stderr,
                     "note: sharded runs use quiescent-only "
                     "checking; a --bug mutation that only trips "
                     "per-step invariants may go uncaught\n");
    if (opt.jobs != 1)
        opt.jobs = cli::clampJobs(opt.jobs, opt.shards);

    if (!opt.replayFile.empty())
        return replayFromFile(opt);
    if (opt.replay)
        return replaySeed(opt);
    if (opt.gen.lossy)
        return lossySweep(opt);

    if (opt.singleSeed) {
        StressCase c = caseFor(opt.seed, opt);
        StressResult r = runStressCase(c, opt.budget, opt.shards);
        printResult(opt.seed, c, r);
        if (r.failed())
            handleFailure(opt.seed, c, opt);
        if (opt.expectCaught)
            return r.failed() ? 0 : 1;
        return r.failed() ? 1 : 0;
    }

    std::printf("sweeping %llu seeds from %llu: nodes=%u bug=%s "
                "transport=%s protocol=%s\n",
                (unsigned long long)opt.seeds,
                (unsigned long long)opt.seedBase, opt.gen.nodes,
                protoBugName(opt.gen.bug),
                transportKindName(opt.gen.transport),
                protocolKindName(opt.gen.protocol));

    // With --jobs != 1 the whole sweep runs up front on a worker
    // pool (each run is an independent single-threaded simulation);
    // results are then scanned in seed order, so the reported first
    // failure matches a sequential sweep.
    std::vector<StressResult> sweep;
    if (opt.jobs != 1) {
        sweep.resize(opt.seeds);
        ThreadPool pool(opt.jobs);
        for (std::uint64_t i = 0; i < opt.seeds; ++i) {
            pool.submit([i, &opt, &sweep] {
                StressCase c = caseFor(opt.seedBase + i, opt);
                sweep[i] = runStressCase(c, opt.budget, opt.shards);
            });
        }
        pool.wait();
    }

    std::uint64_t clean = 0;
    for (std::uint64_t i = 0; i < opt.seeds; ++i) {
        std::uint64_t seed = opt.seedBase + i;
        StressCase c = caseFor(seed, opt);
        StressResult r = sweep.empty()
                             ? runStressCase(c, opt.budget,
                                             opt.shards)
                             : std::move(sweep[i]);
        if (!r.failed()) {
            ++clean;
            continue;
        }
        std::printf("FAILING SEED %llu (replay with --replay "
                    "%llu)\n",
                    (unsigned long long)seed,
                    (unsigned long long)seed);
        printResult(seed, c, r);
        handleFailure(seed, c, opt);
        if (opt.expectCaught) {
            std::printf("failure found after %llu seeds\n",
                        (unsigned long long)(i + 1));
            return 0;
        }
        return 1;
    }
    std::printf("%llu/%llu seeds clean\n",
                (unsigned long long)clean,
                (unsigned long long)opt.seeds);
    if (opt.expectCaught) {
        std::fprintf(stderr,
                     "expected a failure but the sweep was clean\n");
        return 1;
    }
    return 0;
}
