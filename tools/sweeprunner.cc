/**
 * @file
 * Parallel sweep runner (docs/PERF.md).
 *
 * Sweeps are embarrassingly parallel: every stress seed and every
 * figure bench is an independent single-threaded simulation. This
 * tool fans them out over a thread pool and certifies determinism —
 * each stress run's FNV-1a digest is collected and compared against
 * a golden file, so a parallel sweep proves bit-identical behavior
 * with the sequential runs that recorded the goldens.
 *
 * Modes:
 *   sweeprunner stress --nodes N --seeds S [--jobs J]
 *                      [--golden FILE] [--out FILE]
 *       Run S seeds, print "seed digest" per line in seed order.
 *       With --golden, exit nonzero if any digest differs.
 *   sweeprunner bench  [--jobs J] [--quick] [--bindir DIR]
 *                      [--only NAME] [--out BENCH_figures.json]
 *       Run the figure/table bench binaries concurrently and
 *       record wall-clock seconds per bench.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "fault/stress.hh"
#include "sim/thread_pool.hh"
#include "cli.hh"

using namespace cenju;
using namespace cenju::fault;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: sweeprunner stress [options]\n"
        "         --nodes N      system size (default 16)\n"
        "         --seeds S      seeds to sweep (default 50)\n"
        "         --seed-base B  first seed (default 1)\n"
        "         --budget N     per-run event budget\n"
        "         --transport T  multistage | ideal | direct\n"
        "         --protocol P   queuing | nack | phase-priority\n"
        "         --reliability R  off | e2e (retransmit decorator)\n"
        "         --jobs J       worker threads (default: cores)\n"
        "         --shards N     simulation shards per run\n"
        "                        (default 1; digests bit-identical\n"
        "                        across shard counts)\n"
        "         --golden FILE  compare digests against FILE\n"
        "         --out FILE     write digests to FILE\n"
        "       sweeprunner bench [options]\n"
        "         --jobs J       worker threads (default: cores)\n"
        "         --quick        CENJU_QUICK=1 scaled-down runs\n"
        "         --bindir DIR   bench binary dir (default bench)\n"
        "         --only NAME    run just one bench\n"
        "         --out FILE     write BENCH_figures.json\n");
    return 2;
}

struct SeedOutcome
{
    std::uint64_t seed = 0;
    std::uint64_t digest = 0;
    std::uint64_t steps = 0;
    bool failed = true;
};

int
runStressMode(int argc, char **argv)
{
    unsigned nodes = 16;
    std::uint64_t seeds = 50, seedBase = 1;
    std::uint64_t budget = defaultEventBudget;
    unsigned jobs = 0;
    unsigned shards = 1;
    std::string goldenFile, outFile;

    StressOptions opts;

    cli::OptionParser args(argc, argv, 0);
    while (args.next()) {
        if (args.is("--nodes"))
            nodes = args.u32();
        else if (args.is("--seeds"))
            seeds = args.u64();
        else if (args.is("--seed-base"))
            seedBase = args.u64();
        else if (args.is("--budget"))
            budget = args.u64();
        else if (args.is("--transport"))
            opts.transport = cli::transportValue(args);
        else if (args.is("--protocol"))
            opts.protocol = cli::protocolValue(args);
        else if (args.is("--reliability"))
            opts.reliability = cli::reliabilityValue(args);
        else if (args.is("--jobs"))
            jobs = args.u32();
        else if (args.is("--shards")) {
            shards = args.u32();
            if (shards == 0)
                shards = 1;
        } else if (args.is("--golden"))
            goldenFile = args.value();
        else if (args.is("--out"))
            outFile = args.value();
        else
            return usage();
    }

    opts.nodes = nodes;
    if (shards > 1 && opts.transport == TransportKind::Multistage) {
        // Clamp here (not per run) so a long sweep warns once.
        std::fprintf(stderr,
                     "note: the multistage fabric has no "
                     "cross-shard latency floor; running with 1 "
                     "shard\n");
        shards = 1;
    }
    if (shards > 1 && opts.reliability == ReliabilityKind::E2e) {
        std::fprintf(stderr,
                     "note: the reliability decorator runs "
                     "sequentially; running with 1 shard\n");
        shards = 1;
    }
    jobs = cli::clampJobs(jobs, shards);

    std::vector<SeedOutcome> results(seeds);
    ThreadPool pool(jobs);
    std::printf("sweeping %llu seeds from %llu: nodes=%u jobs=%u "
                "shards=%u\n",
                (unsigned long long)seeds,
                (unsigned long long)seedBase, nodes,
                pool.threadCount(), shards);

    for (std::uint64_t k = 0; k < seeds; ++k) {
        pool.submit([k, seedBase, budget, shards, &opts, &results] {
            std::uint64_t seed = seedBase + k;
            StressCase c = makeStressCase(seed, opts);
            StressResult r = runStressCase(c, budget, shards);
            results[k] = {seed, r.digest, r.steps, r.failed()};
        });
    }
    pool.wait();

    unsigned failures = 0;
    for (const SeedOutcome &o : results) {
        std::printf("%llu %016llx\n", (unsigned long long)o.seed,
                    (unsigned long long)o.digest);
        if (o.failed)
            ++failures;
    }
    if (failures) {
        std::fprintf(stderr, "%u/%llu seeds FAILED\n", failures,
                     (unsigned long long)seeds);
        return 1;
    }

    if (!outFile.empty()) {
        std::ofstream out(outFile);
        for (const SeedOutcome &o : results) {
            char line[64];
            std::snprintf(line, sizeof(line), "%llu %016llx\n",
                          (unsigned long long)o.seed,
                          (unsigned long long)o.digest);
            out << line;
        }
    }

    if (!goldenFile.empty()) {
        std::ifstream in(goldenFile);
        if (!in) {
            std::fprintf(stderr, "cannot open golden file %s\n",
                         goldenFile.c_str());
            return 1;
        }
        std::map<std::uint64_t, std::uint64_t> golden;
        std::uint64_t s;
        std::string d;
        while (in >> s >> d)
            golden[s] = std::strtoull(d.c_str(), nullptr, 16);
        unsigned mismatches = 0, checked = 0;
        for (const SeedOutcome &o : results) {
            auto it = golden.find(o.seed);
            if (it == golden.end())
                continue;
            ++checked;
            if (it->second != o.digest) {
                std::fprintf(stderr,
                             "seed %llu: digest %016llx != "
                             "golden %016llx\n",
                             (unsigned long long)o.seed,
                             (unsigned long long)o.digest,
                             (unsigned long long)it->second);
                ++mismatches;
            }
        }
        std::printf("golden check: %u/%u digests match\n",
                    checked - mismatches, checked);
        if (mismatches || checked == 0)
            return 1;
    }
    return 0;
}

struct BenchOutcome
{
    std::string name;
    double seconds = 0;
    int exitCode = -1;
};

int
runBenchMode(int argc, char **argv)
{
    unsigned jobs = 0;
    bool quick = false;
    std::string bindir = "bench", only, outFile;

    cli::OptionParser args(argc, argv, 0);
    while (args.next()) {
        if (args.is("--jobs"))
            jobs = args.u32();
        else if (args.is("--quick"))
            quick = true;
        else if (args.is("--bindir"))
            bindir = args.value();
        else if (args.is("--only"))
            only = args.value();
        else if (args.is("--out"))
            outFile = args.value();
        else
            return usage();
    }

    static const char *const benches[] = {
        "fig4_directory_precision", "fig6_starvation",
        "fig10_store_latency",      "fig11a_rewriting_ratio",
        "fig11b_efficiency",        "fig12_speedup",
        "table1_directory_schemes", "table2_load_latency",
        "table3_cache_miss",        "table4_app_characteristics",
        "micro_components",
    };

    std::vector<BenchOutcome> results;
    for (const char *b : benches) {
        if (!only.empty() && only != b)
            continue;
        results.push_back({b, 0, -1});
    }
    if (results.empty()) {
        std::fprintf(stderr, "no bench matches --only %s\n",
                     only.c_str());
        return 2;
    }

    ThreadPool pool(jobs);
    std::printf("running %zu benches, jobs=%u quick=%d\n",
                results.size(), pool.threadCount(), (int)quick);
    std::mutex printMu;
    for (BenchOutcome &r : results) {
        pool.submit([&r, &bindir, quick, &printMu] {
            std::string cmd;
            if (quick)
                cmd += "CENJU_QUICK=1 ";
            cmd += bindir + "/" + r.name + " > /dev/null 2>&1";
            auto t0 = std::chrono::steady_clock::now();
            int rc = std::system(cmd.c_str());
            r.seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
            r.exitCode = rc;
            std::lock_guard<std::mutex> lk(printMu);
            std::printf("%-28s %8.3fs rc=%d\n", r.name.c_str(),
                        r.seconds, rc);
            std::fflush(stdout);
        });
    }
    pool.wait();

    double total = 0;
    int bad = 0;
    for (const BenchOutcome &r : results) {
        total += r.seconds;
        if (r.exitCode != 0)
            ++bad;
    }
    std::printf("total bench cpu-seconds: %.3f\n", total);

    if (!outFile.empty()) {
        std::ofstream out(outFile);
        out << "{\n  \"schema\": \"cenju-figures-bench-1\",\n"
            << "  \"quick\": " << (quick ? "true" : "false")
            << ",\n  \"results\": [\n";
        for (std::size_t i = 0; i < results.size(); ++i) {
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          "    {\"name\": \"%s\", \"seconds\": "
                          "%.4f, \"exit\": %d}%s\n",
                          results[i].name.c_str(),
                          results[i].seconds, results[i].exitCode,
                          i + 1 < results.size() ? "," : "");
            out << buf;
        }
        out << "  ]\n}\n";
    }
    return bad ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string mode = argv[1];
    if (mode == "stress")
        return runStressMode(argc - 2, argv + 2);
    if (mode == "bench")
        return runBenchMode(argc - 2, argv + 2);
    return usage();
}
